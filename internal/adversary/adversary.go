// Package adversary turns the lower-bound proofs of Alur & Taubenfeld into
// executable constructions:
//
//   - the Lemma 2 condition on pairs of contention-free runs of a
//     contention detector (the hinge of the Theorem 1 step lower bound);
//   - the Theorem 6 clone schedule (identical processes in lock step) that
//     forces n-1 worst-case steps in models without test-and-flip;
//   - the Theorem 7 sequential run that forces n-1 distinct registers in
//     the bare test-and-set model;
//   - the [AT92] starvation schedule demonstrating that the worst-case
//     step complexity of mutual exclusion is unbounded.
//
// Running these against the repository's algorithms certifies the bounds
// empirically; running them against deliberately broken algorithms (see
// the tests) shows the constructions actually find violations.
package adversary

import (
	"fmt"

	"cfc/internal/driver"
	"cfc/internal/metrics"
	"cfc/internal/opset"
	"cfc/internal/sim"
)

// WriteOp is one write along a contention-free run: the register (cell)
// written and the value it held afterwards. It is the paper's
// W(p, m) = (x, v) pair.
type WriteOp struct {
	Cell  int32
	Value uint64
}

// SoloProfile summarises a process's contention-free run the way the
// Lemma 2/3 proofs consume it: the ordered sequence of writes and the set
// of registers read.
type SoloProfile struct {
	// PID is the process.
	PID int
	// Writes holds W(p, 1), W(p, 2), ... in order.
	Writes []WriteOp
	// Reads is R(p), the set of cells the process reads.
	Reads map[int32]bool
	// WriteRegs is the set of distinct cells written (the write-register
	// complexity of the run), and FirstWrites the order in which they are
	// first written (the paper's wr(p) sequence from the Lemma 5 stretch
	// decomposition).
	WriteRegs   map[int32]bool
	FirstWrites []int32
}

// ProfileOf extracts the solo profile of process pid from a trace of a
// run in which pid ran without interference. Writes of read-modify-write
// operations record the value the register held after the operation.
func ProfileOf(t *sim.Trace, pid int) SoloProfile {
	p := SoloProfile{
		PID:       pid,
		Reads:     make(map[int32]bool),
		WriteRegs: make(map[int32]bool),
	}
	for _, e := range t.Events {
		if e.Kind != sim.KindAccess || e.PID != pid {
			continue
		}
		if e.IsRead() {
			p.Reads[e.Cell] = true
			continue
		}
		if e.IsWrite() {
			var v uint64
			switch e.Op {
			case opset.WriteWord:
				v = e.Arg
			case opset.Write1, opset.TestAndSet:
				v = 1
			case opset.Write0, opset.TestAndReset:
				v = 0
			case opset.Flip, opset.TestAndFlip:
				v = e.Ret ^ 1
			}
			p.Writes = append(p.Writes, WriteOp{Cell: e.Cell, Value: v})
			if !p.WriteRegs[e.Cell] {
				p.WriteRegs[e.Cell] = true
				p.FirstWrites = append(p.FirstWrites, e.Cell)
			}
		}
	}
	return p
}

// Lemma2Condition checks the conclusion of Lemma 2 for two solo profiles:
// there exists an index m such that the m-th writes differ (as
// register/value pairs) and at least one process reads the register the
// other writes at position m. Every correct contention detector satisfies
// this for every pair of processes; a pair violating it admits the
// Lemma 2 merge, a run in which both processes output 1.
func Lemma2Condition(a, b SoloProfile) bool {
	// The proof pads the shorter run with dummy writes; a dummy write
	// never equals a real one, so positions beyond the shorter length
	// satisfy the "differ" half and only need the read-visibility half.
	limit := len(a.Writes)
	if len(b.Writes) > limit {
		limit = len(b.Writes)
	}
	for m := 0; m < limit; m++ {
		wa, okA := writeAt(a, m)
		wb, okB := writeAt(b, m)
		switch {
		case okA && okB:
			if wa != wb && (b.Reads[wa.Cell] || a.Reads[wb.Cell]) {
				return true
			}
		case okA:
			if b.Reads[wa.Cell] {
				return true
			}
		case okB:
			if a.Reads[wb.Cell] {
				return true
			}
		}
	}
	return false
}

func writeAt(p SoloProfile, m int) (WriteOp, bool) {
	if m < len(p.Writes) {
		return p.Writes[m], true
	}
	return WriteOp{}, false
}

// SoloProfiles runs the task solo for every process identity and returns
// the n profiles. task must behave like a one-shot protocol (detector or
// naming instance).
func SoloProfiles(mem *sim.Memory, task driver.TaskRunner, n int) ([]SoloProfile, error) {
	out := make([]SoloProfile, n)
	for pid := 0; pid < n; pid++ {
		tr, err := driver.SoloTaskRun(mem, task, n, pid)
		if err != nil {
			return nil, fmt.Errorf("adversary: solo run of p%d: %w", pid, err)
		}
		out[pid] = ProfileOf(tr, pid)
	}
	return out, nil
}

// CheckLemma2 verifies the Lemma 2 condition on every pair of processes of
// a contention detector. It returns nil if all pairs satisfy the
// condition, or an error naming the first violating pair - evidence that
// the detector admits a run with two winners.
func CheckLemma2(mem *sim.Memory, task driver.TaskRunner, n int) error {
	profiles, err := SoloProfiles(mem, task, n)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !Lemma2Condition(profiles[i], profiles[j]) {
				return fmt.Errorf("adversary: processes %d and %d violate the Lemma 2 condition: their solo runs can be merged into a double-win", i, j)
			}
		}
	}
	return nil
}

// CloneWorstSteps runs the one-shot task with all n processes scheduled
// round-robin - the Theorem 6 clone adversary: identical deterministic
// processes take identical steps until the shared memory separates them -
// and returns the maximum step complexity over all processes.
func CloneWorstSteps(mem *sim.Memory, task driver.TaskRunner, n, maxSteps int) (int, error) {
	tr, err := driver.TaskRun(mem, task, n, &sim.RoundRobin{}, maxSteps)
	if err != nil {
		return 0, err
	}
	if err := metrics.CheckUniqueOutputs(tr); err != nil {
		return 0, err
	}
	worst, ok := metrics.WorstTask(tr)
	if !ok {
		return 0, fmt.Errorf("adversary: no process terminated under the clone schedule")
	}
	return worst.Steps, nil
}

// SequentialWorstRegisters runs the one-shot task sequentially - the
// Theorem 5/7 run construction - and returns the maximum register
// complexity over all processes.
func SequentialWorstRegisters(mem *sim.Memory, task driver.TaskRunner, n int) (int, error) {
	tr, err := driver.TaskRun(mem, task, n, sim.Sequential{}, 0)
	if err != nil {
		return 0, err
	}
	worst, ok := metrics.WorstTask(tr)
	if !ok {
		return 0, fmt.Errorf("adversary: no process terminated in the sequential run")
	}
	return worst.Registers, nil
}

// StarveVictim demonstrates the unbounded worst-case step complexity of
// mutual exclusion ([AT92], cited in Section 2.2): process 0 holds the
// critical section for dwell internal steps while process 1 busy-waits in
// its entry code. It returns the number of entry-code steps the victim
// took without entering its critical section; the count grows without
// bound in dwell.
//
// The run's event count is linear in dwell, so the whole observation
// streams through sinks — an online mutual-exclusion monitor plus an
// entry-step counter — instead of retaining a dwell-sized trace.
func StarveVictim(mem *sim.Memory, lock driver.Locker, dwell int) (int, error) {
	// The victim idles long enough for the holder to be inside its
	// critical section before starting its own attempt; under round-robin
	// it then busy-waits once per scheduling round for the whole dwell.
	const victimDelay = 64
	holder := driver.MutexBody(lock, 1, dwell)
	victim := func(p *sim.Proc) {
		for i := 0; i < victimDelay; i++ {
			p.Local()
		}
		driver.MutexBody(lock, 1, 0)(p)
	}
	procs := []sim.ProcFunc{holder, victim}
	// The victim is the process whose entry code overlapped the holder's
	// dwell: track the largest entry-step count (accesses between a Try
	// mark and the matching CS mark) observed for any process.
	mon := &metrics.SafetyMonitor{Spec: metrics.SafetyMutex}
	worst := 0
	var inEntry [2]bool
	var entrySteps [2]int
	count := &sim.StreamSink{OnEvent: func(e *sim.Event) {
		switch e.Kind {
		case sim.KindAccess:
			if inEntry[e.PID] {
				entrySteps[e.PID]++
			}
		case sim.KindMark:
			switch e.Phase {
			case sim.PhaseTry:
				inEntry[e.PID] = true
				entrySteps[e.PID] = 0
			case sim.PhaseCS:
				if inEntry[e.PID] {
					inEntry[e.PID] = false
					if entrySteps[e.PID] > worst {
						worst = entrySteps[e.PID]
					}
				}
			}
		}
	}}
	_, err := driver.RunInto(mem, procs, &sim.RoundRobin{}, 0, nil, sim.FanoutSink{mon, count})
	if err != nil {
		return 0, err
	}
	if err := mon.Err(); err != nil {
		return 0, err
	}
	return worst, nil
}
