package mutex

import (
	"fmt"

	"cfc/internal/opset"
	"cfc/internal/sim"
)

// BackoffPolicy selects how long a process delays after noticing
// contention (Section 4 of the paper: "when a process notices contention
// it delays itself for some time, giving other processes a chance to
// proceed"). Delays are deterministic sequences of Local steps, so runs
// stay reproducible.
type BackoffPolicy uint8

const (
	// BackoffNone performs no delay.
	BackoffNone BackoffPolicy = iota
	// BackoffLinear delays 1, 2, 3, ... local steps on successive
	// retries.
	BackoffLinear
	// BackoffExponential delays 1, 2, 4, 8, ... local steps, capped.
	BackoffExponential
)

// String returns the policy name.
func (b BackoffPolicy) String() string {
	switch b {
	case BackoffNone:
		return "none"
	case BackoffLinear:
		return "linear"
	case BackoffExponential:
		return "exponential"
	default:
		return fmt.Sprintf("backoff(%d)", uint8(b))
	}
}

// backoffCap bounds the exponential delay so a single unlucky process is
// not parked forever.
const backoffCap = 64

// delay executes the policy's k-th delay as Local steps.
func (b BackoffPolicy) delay(p *sim.Proc, attempt int) {
	var steps int
	switch b {
	case BackoffLinear:
		steps = attempt + 1
	case BackoffExponential:
		steps = 1 << attempt
		if steps > backoffCap {
			steps = backoffCap
		}
	default:
		return
	}
	for i := 0; i < steps; i++ {
		p.Local()
	}
}

// BackoffTTAS is a test-and-test-and-set lock with backoff: after each
// failed acquisition attempt the process delays per the policy before
// re-probing. This is the construction the paper's Section 4 credits for
// making winner latency under contention approach the contention-free
// latency ([MS93]-style experiments).
type BackoffTTAS struct {
	// Policy is the delay policy; zero value is BackoffNone (plain TTAS).
	Policy BackoffPolicy
}

// Name implements Algorithm.
func (a BackoffTTAS) Name() string { return fmt.Sprintf("ttas-backoff(%v)", a.Policy) }

// Atomicity implements Algorithm.
func (BackoffTTAS) Atomicity(int) int { return 1 }

// Model implements Algorithm.
func (BackoffTTAS) Model() opset.Model {
	return opset.ModelOf(opset.Read, opset.TestAndSet, opset.Write0)
}

// New implements Algorithm.
func (a BackoffTTAS) New(mem *sim.Memory, n int) (Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: ttas-backoff needs n >= 1, got %d", n)
	}
	return &backoffTTAS{bit: mem.Bit("lock"), policy: a.Policy}, nil
}

type backoffTTAS struct {
	bit    sim.Reg
	policy BackoffPolicy
}

// Lock implements Instance.
func (l *backoffTTAS) Lock(p *sim.Proc) {
	attempt := 0
	for {
		if p.Read(l.bit) == 0 && p.TestAndSet(l.bit) == 0 {
			return
		}
		l.policy.delay(p, attempt)
		attempt++
	}
}

// Unlock implements Instance.
func (l *backoffTTAS) Unlock(p *sim.Proc) {
	p.Write(l.bit, 0)
}

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (l *backoffTTAS) RestartSafe() bool { return true }

// BackoffLamport is Lamport's fast algorithm with backoff on its two
// contention-detection points (the y != 0 and x != i branches), following
// the Section 4 observation that fast contention-free algorithms plus
// backoff perform well at all contention levels.
type BackoffLamport struct {
	// Policy is the delay policy; zero value is BackoffNone.
	Policy BackoffPolicy
}

// Name implements Algorithm.
func (a BackoffLamport) Name() string { return fmt.Sprintf("lamport-backoff(%v)", a.Policy) }

// Atomicity implements Algorithm.
func (BackoffLamport) Atomicity(n int) int { return idWidth(n) }

// Model implements Algorithm.
func (BackoffLamport) Model() opset.Model { return opset.AtomicRegisters }

// New implements Algorithm.
func (a BackoffLamport) New(mem *sim.Memory, n int) (Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: lamport-backoff needs n >= 1, got %d", n)
	}
	return &backoffLamport{node: newLamportNode(mem, "", n), policy: a.Policy}, nil
}

type backoffLamport struct {
	node   *lamportNode
	policy BackoffPolicy
}

// Lock implements Instance. The structure mirrors lamportNode.lock with a
// policy delay inserted wherever contention was just observed.
func (l *backoffLamport) Lock(p *sim.Proc) {
	nd := l.node
	id := p.ID() + 1
	v := uint64(id)
	attempt := 0
	for {
		p.Write(nd.b[id-1], 1)
		p.Write(nd.x, v)
		if p.Read(nd.y) != 0 {
			p.Write(nd.b[id-1], 0)
			l.policy.delay(p, attempt)
			attempt++
			await(p, nd.y, 0)
			continue
		}
		p.Write(nd.y, v)
		if p.Read(nd.x) != v {
			p.Write(nd.b[id-1], 0)
			l.policy.delay(p, attempt)
			attempt++
			for j := 0; j < nd.k; j++ {
				await(p, nd.b[j], 0)
			}
			if p.Read(nd.y) != v {
				await(p, nd.y, 0)
				continue
			}
		}
		return
	}
}

// Unlock implements Instance.
func (l *backoffLamport) Unlock(p *sim.Proc) {
	l.node.unlock(p, p.ID()+1)
}

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (l *backoffLamport) RestartSafe() bool { return true }

var (
	_ Algorithm = BackoffTTAS{}
	_ Algorithm = BackoffLamport{}
)
