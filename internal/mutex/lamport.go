package mutex

import (
	"fmt"

	"cfc/internal/opset"
	"cfc/internal/sim"
)

// Lamport is Lamport's fast mutual exclusion algorithm [Lam87]: in the
// absence of contention a process performs 5 accesses in the entry code
// and 2 in the exit code (7 total) to 3 distinct registers, independent of
// n. The registers x and y hold process identifiers, so the atomicity is
// ceil(log2(n+1)) bits (identifiers are 1..n with 0 meaning "empty").
//
// The algorithm is deadlock-free but not starvation-free, and its
// worst-case step complexity is unbounded [AT92].
type Lamport struct{}

// Name implements Algorithm.
func (Lamport) Name() string { return "lamport-fast" }

// Atomicity implements Algorithm.
func (Lamport) Atomicity(n int) int { return idWidth(n) }

// Model implements Algorithm.
func (Lamport) Model() opset.Model { return opset.AtomicRegisters }

// New implements Algorithm.
func (Lamport) New(mem *sim.Memory, n int) (Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: lamport-fast needs n >= 1, got %d", n)
	}
	// Deliberately NOT declared symmetric despite the uniform bodies: the
	// slow path scans b[0..k) in fixed index order, so intermediate states
	// distinguish absolute slot positions — a pid permutation would have
	// to reorder a process's await progress, not just relabel it, and the
	// remapped history of "waiting on b[1]" can coincide with a genuinely
	// different state that reached b[1] by passing b[0]. See the scalarset
	// restriction in sim/symmetry.go.
	return &lamportInstance{node: newLamportNode(mem, "", n)}, nil
}

// lamportInstance adapts a single Lamport node to the Instance interface,
// with each process using slot id p.ID()+1.
type lamportInstance struct {
	node *lamportNode
}

// Lock implements Instance.
func (li *lamportInstance) Lock(p *sim.Proc) { li.node.lock(p, p.ID()+1) }

// Unlock implements Instance.
func (li *lamportInstance) Unlock(p *sim.Proc) { li.node.unlock(p, p.ID()+1) }

// RestartSafe declares crash/recovery faults admissible: a revived
// process's fresh attempt contends like any competitor against the dead
// incarnation's abandoned registers (see driver.RestartCapable).
func (li *lamportInstance) RestartSafe() bool { return true }

// lamportNode is one copy of Lamport's fast algorithm arbitrating among k
// slots with identifiers 1..k. It is used directly by the Lamport
// algorithm (k = n) and as the node of the Theorem 3 tournament
// (k = 2^l - 1).
type lamportNode struct {
	k int
	x sim.Reg   // last slot to pass the doorway
	y sim.Reg   // gate: 0 when free
	b []sim.Reg // b[s-1]: slot s is competing
}

// newLamportNode declares the node's registers in mem. The register names
// are prefixed so several nodes can coexist ("n3.x", "n3.y", "n3.b[0]").
func newLamportNode(mem *sim.Memory, prefix string, k int) *lamportNode {
	w := idWidth(k)
	return &lamportNode{
		k: k,
		x: mem.Register(prefix+"x", w),
		y: mem.Register(prefix+"y", w),
		b: mem.Bits(prefix+"b", k),
	}
}

// lock runs the entry code for slot id (1-based).
//
// In the absence of contention the path is: write b[id], write x, read y
// (sees 0), write y, read x (sees id) - 5 accesses to 3 distinct
// registers.
func (nd *lamportNode) lock(p *sim.Proc, id int) {
	v := uint64(id)
	for {
		p.Write(nd.b[id-1], 1)
		p.Write(nd.x, v)
		if p.Read(nd.y) != 0 {
			p.Write(nd.b[id-1], 0)
			await(p, nd.y, 0)
			continue
		}
		p.Write(nd.y, v)
		if p.Read(nd.x) != v {
			p.Write(nd.b[id-1], 0)
			for j := 0; j < nd.k; j++ {
				await(p, nd.b[j], 0)
			}
			if p.Read(nd.y) != v {
				await(p, nd.y, 0)
				continue
			}
		}
		return
	}
}

// unlock runs the exit code for slot id: 2 accesses (write y, write
// b[id]).
func (nd *lamportNode) unlock(p *sim.Proc, id int) {
	p.Write(nd.y, 0)
	p.Write(nd.b[id-1], 0)
}

// PackedLamport is Lamport's fast algorithm with the registers x and y
// packed into one word that can also be read at full-word granularity, in
// the spirit of the multi-grain optimisation of Michael & Scott [MS93]
// discussed in Section 1.3 of the paper. The contention-free step
// complexity is unchanged (7), but the contention-free register complexity
// drops from 3 to 2, because the x and y probes of the fast path hit one
// packed word: one fewer distinct register, i.e. one fewer remote transfer
// on a cache-coherent machine. The price is doubled atomicity
// (2*ceil(log2(n+1)) bits), exactly the trade-off the paper's l parameter
// captures.
type PackedLamport struct{}

// Name implements Algorithm.
func (PackedLamport) Name() string { return "lamport-packed" }

// Atomicity implements Algorithm.
func (PackedLamport) Atomicity(n int) int { return 2 * idWidth(n) }

// Model implements Algorithm.
func (PackedLamport) Model() opset.Model { return opset.AtomicRegisters }

// New implements Algorithm.
func (PackedLamport) New(mem *sim.Memory, n int) (Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: lamport-packed needs n >= 1, got %d", n)
	}
	w := idWidth(n)
	word := mem.Register("xy", 2*w)
	pl := &packedLamport{
		n:    n,
		w:    w,
		word: word,
		x:    mem.Field(word, 0, w),
		y:    mem.Field(word, w, w),
		b:    mem.Bits("b", n),
	}
	// NOT declared symmetric, for the same reason as lamport-fast: the
	// fixed-order scan of b[0..n) makes intermediate states non-symmetric.
	return pl, nil
}

type packedLamport struct {
	n    int
	w    int
	word sim.Reg // packed x (low half) and y (high half)
	x    sim.Reg
	y    sim.Reg
	b    []sim.Reg
}

// xyOf splits a packed word value into its x and y halves.
func (pl *packedLamport) xyOf(word uint64) (x, y uint64) {
	mask := (uint64(1) << pl.w) - 1
	return word & mask, word >> pl.w
}

// Lock implements Instance. The fast path performs 5 accesses to 2
// distinct registers: b[i], x-field, word (read), y-field, word (read).
func (pl *packedLamport) Lock(p *sim.Proc) {
	id := uint64(p.ID() + 1)
	me := p.ID()
	for {
		p.Write(pl.b[me], 1)
		p.Write(pl.x, id)
		if _, y := pl.xyOf(p.Read(pl.word)); y != 0 {
			p.Write(pl.b[me], 0)
			for {
				if _, y := pl.xyOf(p.Read(pl.word)); y == 0 {
					break
				}
			}
			continue
		}
		p.Write(pl.y, id)
		if x, _ := pl.xyOf(p.Read(pl.word)); x != id {
			p.Write(pl.b[me], 0)
			for j := 0; j < pl.n; j++ {
				await(p, pl.b[j], 0)
			}
			if p.Read(pl.y) != id {
				await(p, pl.y, 0)
				continue
			}
		}
		return
	}
}

// Unlock implements Instance: write y-field, write b[i].
func (pl *packedLamport) Unlock(p *sim.Proc) {
	p.Write(pl.y, 0)
	p.Write(pl.b[p.ID()], 0)
}

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (pl *packedLamport) RestartSafe() bool { return true }

var (
	_ Algorithm = Lamport{}
	_ Algorithm = PackedLamport{}
)
