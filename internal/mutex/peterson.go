package mutex

import (
	"fmt"

	"cfc/internal/opset"
	"cfc/internal/sim"
)

// twoProcNode is a two-process mutual-exclusion protocol usable as a
// tournament-tree node: sides are 0 and 1.
type twoProcNode interface {
	lock(p *sim.Proc, side int)
	unlock(p *sim.Proc, side int)
}

// petersonNode is Peterson's two-process algorithm, the classic
// tournament-tree node of Peterson & Fischer [PF77]. All registers are
// single bits, so the atomicity is 1. The turn bit is written by both
// processes.
//
// Contention-free cost per node: entry = write flag, write turn, read
// other flag (3 accesses); exit = write flag (1 access); 3 distinct
// registers.
type petersonNode struct {
	flag [2]sim.Reg
	turn sim.Reg
}

func newPetersonNode(mem *sim.Memory, prefix string) *petersonNode {
	return &petersonNode{
		flag: [2]sim.Reg{mem.Bit(prefix + "flag[0]"), mem.Bit(prefix + "flag[1]")},
		turn: mem.Bit(prefix + "turn"),
	}
}

func (nd *petersonNode) lock(p *sim.Proc, side int) {
	other := 1 - side
	p.Write(nd.flag[side], 1)
	p.Write(nd.turn, uint64(side))
	for {
		if p.Read(nd.flag[other]) == 0 {
			return
		}
		if p.Read(nd.turn) != uint64(side) {
			return
		}
	}
}

func (nd *petersonNode) unlock(p *sim.Proc, side int) {
	p.Write(nd.flag[side], 0)
}

// kesselsNode is Kessels's two-process algorithm [Kes82]: a Peterson-style
// arbiter in which every shared bit is written by only one process
// ("arbitration without common modifiable variables"). The shared turn bit
// is replaced by two single-writer bits t[0], t[1]; the virtual turn is
// t[0] XOR t[1].
//
// Side 0 concedes by making the XOR 0 (t0 := t1); side 1 concedes by
// making it 1 (t1 := 1 - t0). A side then waits while the other's flag is
// up and the virtual turn still equals its concession.
//
// Contention-free cost per node: entry = write flag, read other's t,
// write own t, read other flag (4 accesses); exit = write flag (1);
// 4 distinct registers.
type kesselsNode struct {
	flag [2]sim.Reg
	t    [2]sim.Reg
}

func newKesselsNode(mem *sim.Memory, prefix string) *kesselsNode {
	return &kesselsNode{
		flag: [2]sim.Reg{mem.Bit(prefix + "flag[0]"), mem.Bit(prefix + "flag[1]")},
		t:    [2]sim.Reg{mem.Bit(prefix + "t[0]"), mem.Bit(prefix + "t[1]")},
	}
}

func (nd *kesselsNode) lock(p *sim.Proc, side int) {
	other := 1 - side
	p.Write(nd.flag[side], 1)
	tOther := p.Read(nd.t[other])
	// Concede: side 0 targets XOR = 0, side 1 targets XOR = 1.
	var mine uint64
	if side == 0 {
		mine = tOther
	} else {
		mine = 1 - tOther
	}
	p.Write(nd.t[side], mine)
	for {
		if p.Read(nd.flag[other]) == 0 {
			return
		}
		to := p.Read(nd.t[other])
		xor := mine ^ to
		conceded := (side == 0 && xor == 0) || (side == 1 && xor == 1)
		if !conceded {
			return
		}
	}
}

func (nd *kesselsNode) unlock(p *sim.Proc, side int) {
	p.Write(nd.flag[side], 0)
}

// Peterson is Peterson's two-process algorithm as a standalone Algorithm
// (n must be 2). It is the l = 1 baseline for two processes.
type Peterson struct{}

// Name implements Algorithm.
func (Peterson) Name() string { return "peterson-2p" }

// Atomicity implements Algorithm.
func (Peterson) Atomicity(int) int { return 1 }

// Model implements Algorithm.
func (Peterson) Model() opset.Model { return opset.AtomicRegisters }

// New implements Algorithm.
func (Peterson) New(mem *sim.Memory, n int) (Instance, error) {
	if n != 2 {
		return nil, fmt.Errorf("mutex: peterson-2p supports exactly 2 processes, got %d", n)
	}
	nd := newPetersonNode(mem, "")
	// The two sides run mirror-image code: flag[side] is a per-pid family
	// and the turn bit holds the writer's side, i.e. its pid. Kessels is
	// deliberately NOT declared: its concession targets (XOR = 0 vs 1) are
	// side-dependent, so swapping pids does not permute its state space.
	mem.DeclareSymmetric(2)
	mem.DeclarePidFamily(nd.flag[:])
	mem.DeclarePidValued(nd.turn, sim.PidEncExact)
	return &twoProcInstance{node: nd}, nil
}

// Kessels is Kessels's two-process algorithm as a standalone Algorithm
// (n must be 2).
type Kessels struct{}

// Name implements Algorithm.
func (Kessels) Name() string { return "kessels-2p" }

// Atomicity implements Algorithm.
func (Kessels) Atomicity(int) int { return 1 }

// Model implements Algorithm.
func (Kessels) Model() opset.Model { return opset.AtomicRegisters }

// New implements Algorithm.
func (Kessels) New(mem *sim.Memory, n int) (Instance, error) {
	if n != 2 {
		return nil, fmt.Errorf("mutex: kessels-2p supports exactly 2 processes, got %d", n)
	}
	return &twoProcInstance{node: newKesselsNode(mem, "")}, nil
}

type twoProcInstance struct {
	node twoProcNode
}

func (ti *twoProcInstance) Lock(p *sim.Proc)   { ti.node.lock(p, p.ID()) }
func (ti *twoProcInstance) Unlock(p *sim.Proc) { ti.node.unlock(p, p.ID()) }

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (ti *twoProcInstance) RestartSafe() bool { return true }

var (
	_ Algorithm   = Peterson{}
	_ Algorithm   = Kessels{}
	_ twoProcNode = (*petersonNode)(nil)
	_ twoProcNode = (*kesselsNode)(nil)
)
