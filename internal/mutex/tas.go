package mutex

import (
	"fmt"

	"cfc/internal/opset"
	"cfc/internal/sim"
)

// TASLock is a test-and-set spin lock on a single shared bit. It is the
// classic read-modify-write baseline: contention-free complexity is 2
// steps (one test-and-set, one write-0) on 1 register, but every retry
// under contention is a mutating access that invalidates other processors'
// caches, which is what the backoff experiment of Section 4 quantifies.
type TASLock struct{}

// Name implements Algorithm.
func (TASLock) Name() string { return "tas-lock" }

// Atomicity implements Algorithm.
func (TASLock) Atomicity(int) int { return 1 }

// Model implements Algorithm.
func (TASLock) Model() opset.Model { return opset.ModelOf(opset.TestAndSet, opset.Write0) }

// New implements Algorithm.
func (TASLock) New(mem *sim.Memory, n int) (Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: tas-lock needs n >= 1, got %d", n)
	}
	// Every process runs the identical pid-free body on one shared bit,
	// so the program is fully pid-symmetric with no encoded pids.
	mem.DeclareSymmetric(n)
	return &tasLock{bit: mem.Bit("lock")}, nil
}

type tasLock struct {
	bit sim.Reg
}

// Lock implements Instance.
func (l *tasLock) Lock(p *sim.Proc) {
	for p.TestAndSet(l.bit) == 1 {
	}
}

// Unlock implements Instance.
func (l *tasLock) Unlock(p *sim.Proc) {
	p.Write(l.bit, 0)
}

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (l *tasLock) RestartSafe() bool { return true }

// TTASLock is the test-and-test-and-set variant: it spins on reads and
// attempts the mutating test-and-set only after observing the lock free.
// Contention-free complexity is 3 steps (read, test-and-set, write-0) on
// 1 register.
type TTASLock struct{}

// Name implements Algorithm.
func (TTASLock) Name() string { return "ttas-lock" }

// Atomicity implements Algorithm.
func (TTASLock) Atomicity(int) int { return 1 }

// Model implements Algorithm.
func (TTASLock) Model() opset.Model {
	return opset.ModelOf(opset.Read, opset.TestAndSet, opset.Write0)
}

// New implements Algorithm.
func (TTASLock) New(mem *sim.Memory, n int) (Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: ttas-lock needs n >= 1, got %d", n)
	}
	// Identical pid-free bodies on one shared bit: fully pid-symmetric.
	mem.DeclareSymmetric(n)
	return &ttasLock{bit: mem.Bit("lock")}, nil
}

type ttasLock struct {
	bit sim.Reg
}

// Lock implements Instance.
func (l *ttasLock) Lock(p *sim.Proc) {
	for {
		for p.Read(l.bit) == 1 {
		}
		if p.TestAndSet(l.bit) == 0 {
			return
		}
	}
}

// Unlock implements Instance.
func (l *ttasLock) Unlock(p *sim.Proc) {
	p.Write(l.bit, 0)
}

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (l *ttasLock) RestartSafe() bool { return true }

var (
	_ Algorithm = TASLock{}
	_ Algorithm = TTASLock{}
)
