package mutex_test

import (
	"fmt"
	"testing"

	"cfc/internal/bounds"
	"cfc/internal/driver"
	"cfc/internal/metrics"
	"cfc/internal/mutex"
	"cfc/internal/sim"
)

// build instantiates alg for n processes on a fresh memory.
func build(t *testing.T, alg mutex.Algorithm, n int) (*sim.Memory, mutex.Instance) {
	t.Helper()
	mem := sim.NewMemory(alg.Model())
	inst, err := alg.New(mem, n)
	if err != nil {
		t.Fatalf("%s.New(%d): %v", alg.Name(), n, err)
	}
	return mem, inst
}

// measureCF measures the contention-free complexity of alg for n.
func measureCF(t *testing.T, alg mutex.Algorithm, n int) metrics.Measure {
	t.Helper()
	mem, inst := build(t, alg, n)
	m, err := driver.ContentionFreeMutex(mem, inst, n)
	if err != nil {
		t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
	}
	return m
}

func TestLamportContentionFreeComplexity(t *testing.T) {
	// The paper (Section 2.6): "in this algorithm, in the absence of
	// contention a process needs to access the shared memory five times in
	// order to enter its critical section and twice in order to exit it -
	// a total of seven accesses. Only 3 different registers are accessed."
	for _, n := range []int{1, 2, 3, 8, 100} {
		m := measureCF(t, mutex.Lamport{}, n)
		if m.Steps != 7 {
			t.Errorf("n=%d: contention-free steps = %d, want 7", n, m.Steps)
		}
		if m.Registers != 3 {
			t.Errorf("n=%d: contention-free registers = %d, want 3", n, m.Registers)
		}
	}
}

func TestLamportEntryExitSplit(t *testing.T) {
	mem, inst := build(t, mutex.Lamport{}, 4)
	tr, err := driver.SoloMutexRun(mem, inst, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	atts := metrics.MutexAttempts(tr)
	if len(atts) != 1 {
		t.Fatalf("attempts = %d", len(atts))
	}
	if atts[0].Entry.Steps != 5 {
		t.Errorf("entry steps = %d, want 5", atts[0].Entry.Steps)
	}
	if atts[0].Exit.Steps != 2 {
		t.Errorf("exit steps = %d, want 2", atts[0].Exit.Steps)
	}
	// Entry touches b[i], x, y; exit touches y, b[i].
	if atts[0].Entry.Registers != 3 || atts[0].Exit.Registers != 2 {
		t.Errorf("entry/exit registers = %d/%d, want 3/2",
			atts[0].Entry.Registers, atts[0].Exit.Registers)
	}
}

func TestPackedLamportSavesARegister(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		m := measureCF(t, mutex.PackedLamport{}, n)
		if m.Steps != 7 {
			t.Errorf("n=%d: packed steps = %d, want 7", n, m.Steps)
		}
		if m.Registers != 2 {
			t.Errorf("n=%d: packed registers = %d, want 2 (x and y share a word)", n, m.Registers)
		}
	}
}

func TestPackedLamportDoublesAtomicity(t *testing.T) {
	plain := mutex.Lamport{}
	packed := mutex.PackedLamport{}
	for _, n := range []int{2, 10, 1000} {
		if got, want := packed.Atomicity(n), 2*plain.Atomicity(n); got != want {
			t.Errorf("n=%d: packed atomicity = %d, want %d", n, got, want)
		}
	}
}

func TestPetersonContentionFreeComplexity(t *testing.T) {
	m := measureCF(t, mutex.Peterson{}, 2)
	if m.Steps != 4 {
		t.Errorf("peterson steps = %d, want 4 (3 entry + 1 exit)", m.Steps)
	}
	if m.Registers != 3 {
		t.Errorf("peterson registers = %d, want 3", m.Registers)
	}
}

func TestKesselsContentionFreeComplexity(t *testing.T) {
	m := measureCF(t, mutex.Kessels{}, 2)
	if m.Steps != 5 {
		t.Errorf("kessels steps = %d, want 5 (4 entry + 1 exit)", m.Steps)
	}
	if m.Registers != 4 {
		t.Errorf("kessels registers = %d, want 4 (single-writer bits)", m.Registers)
	}
}

func TestTASLocksContentionFree(t *testing.T) {
	m := measureCF(t, mutex.TASLock{}, 4)
	if m.Steps != 2 || m.Registers != 1 {
		t.Errorf("tas = %+v, want 2 steps / 1 register", m)
	}
	m = measureCF(t, mutex.TTASLock{}, 4)
	if m.Steps != 3 || m.Registers != 1 {
		t.Errorf("ttas = %+v, want 3 steps / 1 register", m)
	}
}

func TestTournamentTheorem3Complexity(t *testing.T) {
	// Theorem 3: contention-free step complexity 7*ceil(log n / l) and
	// register complexity 3*ceil(log n / l). Our nodes arbitrate 2^l - 1
	// slots (identifier 0 is reserved), so the measured depth is
	// ceil(log n / log(2^l - 1)), which equals ceil(log n / l) whenever
	// the per-level capacity loss does not change the ceiling; the cases
	// below are chosen to match exactly.
	cases := []struct {
		n, l  int
		depth int
	}{
		{n: 7, l: 3, depth: 1},     // one node, 7 slots
		{n: 49, l: 3, depth: 2},    // 7^2
		{n: 8, l: 4, depth: 1},     // 15 slots per node
		{n: 225, l: 4, depth: 2},   // 15^2
		{n: 3, l: 2, depth: 1},     // 3 slots per node
		{n: 9, l: 2, depth: 2},     // 3^2
		{n: 27, l: 2, depth: 3},    // 3^3
		{n: 1000, l: 10, depth: 1}, // 1023 slots
	}
	for _, tc := range cases {
		alg := mutex.Tournament{L: tc.l}
		if got := alg.Depth(tc.n); got != tc.depth {
			t.Errorf("Depth(n=%d, l=%d) = %d, want %d", tc.n, tc.l, got, tc.depth)
			continue
		}
		m := measureCF(t, alg, tc.n)
		if want := 7 * tc.depth; m.Steps != want {
			t.Errorf("n=%d l=%d: steps = %d, want %d", tc.n, tc.l, m.Steps, want)
		}
		if want := 3 * tc.depth; m.Registers != want {
			t.Errorf("n=%d l=%d: registers = %d, want %d", tc.n, tc.l, m.Registers, want)
		}
	}
}

func TestTournamentBitNodes(t *testing.T) {
	// l = 1: binary tree of Peterson nodes, 4 steps / 3 registers per
	// level, depth ceil(log2 n).
	for _, n := range []int{2, 4, 8, 16} {
		alg := mutex.Tournament{L: 1}
		d := bounds.CeilLog2(n)
		if got := alg.Depth(n); got != d {
			t.Fatalf("Depth(%d) = %d, want %d", n, got, d)
		}
		m := measureCF(t, alg, n)
		if m.Steps != 4*d || m.Registers != 3*d {
			t.Errorf("n=%d: l=1 tournament = %+v, want %d steps / %d regs", n, m, 4*d, 3*d)
		}
	}
	// Kessels nodes: 5 steps / 4 registers per level, single-writer bits.
	for _, n := range []int{2, 8} {
		alg := mutex.Tournament{L: 1, Node: mutex.NodeKessels}
		d := bounds.CeilLog2(n)
		m := measureCF(t, alg, n)
		if m.Steps != 5*d || m.Registers != 4*d {
			t.Errorf("n=%d: kessels tournament = %+v, want %d steps / %d regs", n, m, 5*d, 4*d)
		}
	}
}

func TestTournamentRespectsTheorem3Bound(t *testing.T) {
	// Measured complexity never exceeds the paper's closed form
	// 7*ceil(log n/l) steps and 3*ceil(log n/l) registers for l >= 2
	// (for l = 1 the paper's Lamport node degenerates; our Peterson node
	// keeps the same shape with constant 4 <= 7 and 3 <= 3 per level).
	for _, n := range []int{2, 3, 5, 10, 33, 100} {
		for _, l := range []int{2, 3, 5, 8} {
			m := measureCF(t, mutex.Tournament{L: l}, n)
			// The arity-(2^l-1) depth can exceed ceil(log n / l) by at
			// most a factor log(2^l)/log(2^l -1); for these sizes one
			// extra level at most.
			ub := bounds.MutexCFStepUpper(n, l) + 7
			if m.Steps > ub {
				t.Errorf("n=%d l=%d: steps %d exceed bound %d", n, l, m.Steps, ub)
			}
			rub := bounds.MutexCFRegUpper(n, l) + 3
			if m.Registers > rub {
				t.Errorf("n=%d l=%d: registers %d exceed bound %d", n, l, m.Registers, rub)
			}
		}
	}
}

func TestTournamentAtomicityMatchesL(t *testing.T) {
	for _, l := range []int{2, 3, 4} {
		alg := mutex.Tournament{L: l}
		mem, inst := build(t, alg, 20)
		tr, err := driver.SoloMutexRun(mem, inst, 20, 7)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Atomicity(); got != l {
			t.Errorf("l=%d: measured atomicity = %d", l, got)
		}
	}
}

// allAlgorithms returns every algorithm configured for n processes, for
// safety sweeps.
func allAlgorithms(n int) []mutex.Algorithm {
	algs := []mutex.Algorithm{
		mutex.Lamport{},
		mutex.PackedLamport{},
		mutex.TASLock{},
		mutex.TTASLock{},
		mutex.BackoffTTAS{Policy: mutex.BackoffExponential},
		mutex.BackoffLamport{Policy: mutex.BackoffLinear},
		mutex.Tournament{L: 1},
		mutex.Tournament{L: 1, Node: mutex.NodeKessels},
		mutex.Tournament{L: 2},
		mutex.Tournament{L: 3},
	}
	if n == 2 {
		algs = append(algs, mutex.Peterson{}, mutex.Kessels{})
	}
	return algs
}

func TestMutualExclusionUnderRandomSchedules(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, alg := range allAlgorithms(n) {
			alg := alg
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				mem := sim.NewMemory(alg.Model())
				inst, err := alg.New(mem, n)
				if err != nil {
					t.Fatal(err)
				}
				for seed := int64(0); seed < 30; seed++ {
					tr, err := driver.ContendedMutexRun(mem, inst, n, 2, 1, sim.NewRandom(seed), 1<<16)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if err := metrics.CheckMutualExclusion(tr); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

func TestDeadlockFreedomUnderFairSchedules(t *testing.T) {
	// Under round-robin (a fair scheduler) every process must complete
	// all its rounds: the run ends with all processes done.
	for _, n := range []int{2, 3} {
		for _, alg := range allAlgorithms(n) {
			alg := alg
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				mem := sim.NewMemory(alg.Model())
				inst, err := alg.New(mem, n)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := driver.ContendedMutexRun(mem, inst, n, 3, 0, &sim.RoundRobin{}, 1<<18)
				if err != nil {
					t.Fatal(err)
				}
				if tr.Stop != sim.StopAllDone {
					t.Fatalf("round-robin run did not complete: %v", tr.Stop)
				}
				for pid := 0; pid < n; pid++ {
					if !tr.Done(pid) {
						t.Errorf("process %d starved", pid)
					}
				}
				if err := metrics.CheckMutualExclusion(tr); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestAlgorithmConfigErrors(t *testing.T) {
	mem := sim.NewMemory(mutex.Lamport{}.Model())
	if _, err := (mutex.Lamport{}).New(mem, 0); err == nil {
		t.Error("lamport n=0 should fail")
	}
	if _, err := (mutex.Peterson{}).New(mem, 3); err == nil {
		t.Error("peterson n=3 should fail")
	}
	if _, err := (mutex.Kessels{}).New(mem, 1); err == nil {
		t.Error("kessels n=1 should fail")
	}
	if _, err := (mutex.Tournament{L: 0}).New(mem, 4); err == nil {
		t.Error("tournament l=0 should fail")
	}
}

func TestSingleProcessNoArbitration(t *testing.T) {
	// n = 1: the tournament has depth 0 and lock/unlock are free.
	m := measureCF(t, mutex.Tournament{L: 2}, 1)
	if m.Steps != 0 || m.Registers != 0 {
		t.Errorf("n=1 tournament = %+v, want zero", m)
	}
}

func TestBackoffDoesNotChangeContentionFreeComplexity(t *testing.T) {
	// Backoff only triggers when contention is noticed, so contention-free
	// complexity matches the base algorithm.
	base := measureCF(t, mutex.Lamport{}, 8)
	backed := measureCF(t, mutex.BackoffLamport{Policy: mutex.BackoffExponential}, 8)
	if base != backed {
		t.Errorf("backoff changed contention-free measure: %+v vs %+v", base, backed)
	}
	baseT := measureCF(t, mutex.TTASLock{}, 8)
	backedT := measureCF(t, mutex.BackoffTTAS{Policy: mutex.BackoffExponential}, 8)
	if baseT != backedT {
		t.Errorf("ttas backoff changed contention-free measure: %+v vs %+v", baseT, backedT)
	}
}

func TestTournamentDepthFormula(t *testing.T) {
	for _, tc := range []struct{ n, l, want int }{
		{1, 2, 0}, {2, 2, 1}, {3, 2, 1}, {4, 2, 2}, {9, 2, 2}, {10, 2, 3},
		{7, 3, 1}, {8, 3, 2}, {49, 3, 2}, {50, 3, 3},
		{2, 1, 1}, {3, 1, 2}, {4, 1, 2}, {5, 1, 3},
	} {
		if got := (mutex.Tournament{L: tc.l}).Depth(tc.n); got != tc.want {
			t.Errorf("Depth(n=%d,l=%d) = %d, want %d", tc.n, tc.l, got, tc.want)
		}
	}
}

func TestLowerBoundsRespected(t *testing.T) {
	// Theorems 1 and 2: every algorithm's measured contention-free
	// complexity lies at or above the closed-form lower bounds for its
	// measured atomicity.
	algs := []mutex.Algorithm{
		mutex.Lamport{},
		mutex.PackedLamport{},
		mutex.Tournament{L: 1},
		mutex.Tournament{L: 2},
		mutex.Tournament{L: 4},
	}
	for _, n := range []int{4, 16, 64} {
		for _, alg := range algs {
			m := measureCF(t, alg, n)
			l := alg.Atomicity(n)
			if lb, ok := bounds.MutexCFStepLower(n, l); ok && float64(m.Steps) <= lb {
				t.Errorf("%s n=%d: steps %d violate Theorem 1 bound %.3f", alg.Name(), n, m.Steps, lb)
			}
			if lb, ok := bounds.MutexCFRegLower(n, l); ok && float64(m.Registers) < lb {
				t.Errorf("%s n=%d: registers %d violate Theorem 2 bound %.3f", alg.Name(), n, m.Registers, lb)
			}
		}
	}
}
