package mutex

import (
	"cfc/internal/opset"
	"cfc/internal/sim"
)

// Algorithm is a mutual-exclusion algorithm family, instantiable for any
// number of processes.
type Algorithm interface {
	// Name returns a short identifier, e.g. "lamport-fast".
	Name() string
	// Atomicity returns the algorithm's atomicity l (the width in bits of
	// the biggest register it accesses in one atomic step) when set up for
	// n processes.
	Atomicity(n int) int
	// Model returns the operation model the algorithm requires.
	Model() opset.Model
	// New declares the algorithm's shared registers in mem and returns an
	// instance for n processes. It returns an error if the algorithm
	// cannot be configured for n (for example, n exceeding the capacity
	// of a fixed-width construction).
	New(mem *sim.Memory, n int) (Instance, error)
}

// Instance is one set-up of an algorithm: processes call Lock and Unlock
// around their critical sections. Implementations identify the calling
// process via p.ID().
type Instance interface {
	Lock(p *sim.Proc)
	Unlock(p *sim.Proc)
}

// idWidth returns the number of bits needed to store process identifiers
// 1..n with 0 reserved as "empty".
func idWidth(n int) int {
	w := 1
	for (uint64(1)<<w)-1 < uint64(n) {
		w++
	}
	return w
}

// await spins until the register view holds the given value. Each probe is
// one shared-memory access.
func await(p *sim.Proc, r sim.Reg, v uint64) {
	for p.Read(r) != v {
	}
}
