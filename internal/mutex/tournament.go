package mutex

import (
	"fmt"

	"cfc/internal/opset"
	"cfc/internal/sim"
)

// NodeKind selects the two-process node used at atomicity 1, where a
// Lamport-fast node cannot arbitrate (an l-bit identifier register with 0
// reserved for "empty" distinguishes only 2^l - 1 competitors, which is 1
// at l = 1). This is ablation 2 of DESIGN.md.
type NodeKind uint8

const (
	// NodePeterson uses Peterson's algorithm [PF77]: 3 bits per node, one
	// of them written by both sides.
	NodePeterson NodeKind = iota + 1
	// NodeKessels uses Kessels's algorithm [Kes82]: 4 single-writer bits
	// per node.
	NodeKessels
)

// String returns the node kind name.
func (k NodeKind) String() string {
	switch k {
	case NodePeterson:
		return "peterson"
	case NodeKessels:
		return "kessels"
	default:
		return fmt.Sprintf("node(%d)", uint8(k))
	}
}

// Tournament is the Theorem 3 construction: a tree of mutual-exclusion
// nodes, each a copy of Lamport's fast algorithm on its own registers of
// width l bits, arbitrating 2^l - 1 child slots (identifier 0 is reserved
// for "empty", a detail the paper glosses over when it says a node
// handles 2^l processes). A process starts at its leaf and must win every
// node on the path to the root before entering its critical section; the
// exit code releases the nodes from leaf to root, as in the paper.
//
// Contention-free complexity: 7 accesses to 3 distinct registers per
// level, with depth ceil(log n / log(2^l - 1)) ~ ceil(log n / l) levels,
// matching Theorem 3's 7*ceil(log n/l) steps and 3*ceil(log n/l)
// registers for l >= 2.
//
// At l = 1 the tree falls back to two-process nodes chosen by Node
// (Peterson by default: 4 accesses to 3 registers per level, depth
// ceil(log n)). The idea of a binary arbitration tree is due to Peterson &
// Fischer [PF77]; with Kessels nodes the tree is Kessels's O(log n)
// worst-case-register-complexity algorithm [Kes82].
type Tournament struct {
	// L is the atomicity (register width in bits), >= 1.
	L int
	// Node selects the two-process node used when L == 1; zero value
	// means NodePeterson.
	Node NodeKind
}

// Name implements Algorithm.
func (t Tournament) Name() string {
	if t.L == 1 {
		return fmt.Sprintf("tournament(l=1,%v)", t.nodeKind())
	}
	return fmt.Sprintf("tournament(l=%d)", t.L)
}

func (t Tournament) nodeKind() NodeKind {
	if t.Node == 0 {
		return NodePeterson
	}
	return t.Node
}

// Atomicity implements Algorithm.
func (t Tournament) Atomicity(int) int { return t.L }

// Model implements Algorithm.
func (Tournament) Model() opset.Model { return opset.AtomicRegisters }

// Arity returns the number of child slots of each tree node.
func (t Tournament) Arity() int {
	if t.L <= 1 {
		return 2
	}
	if t.L >= 31 {
		return 1<<31 - 1
	}
	return 1<<t.L - 1
}

// Depth returns the number of tree levels used for n processes: the
// smallest d with Arity()^d >= n.
func (t Tournament) Depth(n int) int {
	if n <= 1 {
		return 0
	}
	k := t.Arity()
	d := 0
	for span := 1; span < n; span *= k {
		d++
	}
	return d
}

// New implements Algorithm.
func (t Tournament) New(mem *sim.Memory, n int) (Instance, error) {
	if t.L < 1 {
		return nil, fmt.Errorf("mutex: tournament atomicity %d < 1", t.L)
	}
	if n < 1 {
		return nil, fmt.Errorf("mutex: tournament needs n >= 1, got %d", n)
	}
	inst := &tournamentInstance{arity: t.Arity(), depth: t.Depth(n)}
	if inst.depth == 0 {
		return inst, nil // single process: no arbitration needed
	}

	// levels[j] holds the nodes at distance j from the leaves; level 0 is
	// the leaf level. Level j has ceil(n / arity^(j+1)) nodes.
	count := n
	for j := 0; j < inst.depth; j++ {
		count = ceilDiv(count, inst.arity)
		nodes := make([]treeNode, count)
		for i := range nodes {
			prefix := fmt.Sprintf("L%d.%d.", j, i)
			if t.L == 1 {
				switch t.nodeKind() {
				case NodeKessels:
					nodes[i] = &twoNodeAdapter{node: newKesselsNode(mem, prefix)}
				default:
					nodes[i] = &twoNodeAdapter{node: newPetersonNode(mem, prefix)}
				}
			} else {
				nodes[i] = &lamportNodeAdapter{node: newLamportNode(mem, prefix, inst.arity)}
			}
		}
		inst.levels = append(inst.levels, nodes)
	}
	return inst, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// treeNode is a k-slot arbiter; slots are 0-based here (adapters translate
// to each node protocol's convention).
type treeNode interface {
	lockSlot(p *sim.Proc, slot int)
	unlockSlot(p *sim.Proc, slot int)
}

type lamportNodeAdapter struct{ node *lamportNode }

func (a *lamportNodeAdapter) lockSlot(p *sim.Proc, slot int)   { a.node.lock(p, slot+1) }
func (a *lamportNodeAdapter) unlockSlot(p *sim.Proc, slot int) { a.node.unlock(p, slot+1) }

type twoNodeAdapter struct{ node twoProcNode }

func (a *twoNodeAdapter) lockSlot(p *sim.Proc, slot int)   { a.node.lock(p, slot) }
func (a *twoNodeAdapter) unlockSlot(p *sim.Proc, slot int) { a.node.unlock(p, slot) }

type tournamentInstance struct {
	arity  int
	depth  int
	levels [][]treeNode // levels[0] = leaves
}

// path returns, for the calling process, the (node, slot) pair at every
// level from leaf to root.
func (ti *tournamentInstance) path(pid int) [][2]int {
	out := make([][2]int, 0, ti.depth)
	idx := pid
	for j := 0; j < ti.depth; j++ {
		out = append(out, [2]int{idx / ti.arity, idx % ti.arity})
		idx /= ti.arity
	}
	return out
}

// Lock implements Instance: win every node from the leaf to the root.
func (ti *tournamentInstance) Lock(p *sim.Proc) {
	for j, pos := range ti.path(p.ID()) {
		ti.levels[j][pos[0]].lockSlot(p, pos[1])
	}
}

// Unlock implements Instance: release every node from the root down to
// the leaf.
//
// The paper says the exit code runs "in all the nodes in its path from the
// leaf to the root", but taken literally that order is unsafe: after the
// leaf is released, a successor from the same subtree can win it, climb to
// a node the exiting process still holds, and — because successive winners
// of one subtree use the same slot registers at the parent — have its
// freshly written slot state cleared by the exiting process's delayed exit
// writes (observable as a mutual-exclusion violation in the simulator).
// Releasing top-down closes the race: a successor cannot reach level j
// before level j-1 is released, so every node's exit code runs while no
// successor is active at that node. The step and register counts are
// unchanged (the exit code still visits each node on the path once).
func (ti *tournamentInstance) Unlock(p *sim.Proc) {
	path := ti.path(p.ID())
	for j := len(path) - 1; j >= 0; j-- {
		ti.levels[j][path[j][0]].unlockSlot(p, path[j][1])
	}
}

// RestartSafe declares crash/recovery faults admissible (see
// driver.RestartCapable).
func (ti *tournamentInstance) RestartSafe() bool { return true }

var _ Algorithm = Tournament{}
