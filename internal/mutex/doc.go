// Package mutex implements the mutual-exclusion algorithms studied in
// Section 2 of Alur & Taubenfeld: Lamport's fast algorithm, the Theorem 3
// tournament construction for arbitrary atomicity l, the Peterson/Fischer
// and Kessels bit-only tournaments, a packed-word (multi-grain) variant of
// Lamport's algorithm after Michael & Scott, a test-and-set lock baseline,
// and backoff wrappers (Section 4).
//
// Every algorithm is written against the simulator's Proc API, so each
// shared-memory access is one atomic scheduled event and complexity is
// measured, not estimated. An Algorithm is a family (instantiable for any
// process count); New declares its registers in a Memory and returns an
// Instance whose Lock/Unlock are called by process bodies (see package
// driver for the bodies and run shapes).
//
// Instances are plain data plus register handles: all mutable state lives
// in the simulator's Memory, and instance methods are pure functions of
// the values their accesses return. One instance therefore serves any
// number of sequential runs (the memory is reset per run), and the model
// checker's parallel explorer builds one instance per worker — never
// sharing instances across goroutines, because the Memory underneath is
// single-run state.
//
// The portfolio doubles as the checker's test corpus: every algorithm
// here is exhaustively verified for small process counts by cfccheck and
// the internal/check tests, and the deliberately broken designs kept in
// internal/check's regression tests document what the safe designs are
// protecting against.
package mutex
