// Package cfc is an executable reproduction of Alur & Taubenfeld,
// "Contention-Free Complexity of Shared Memory Algorithms" (PODC 1994;
// Information and Computation 126:62-73, 1996).
//
// The package exposes, under one import, the repository's building
// blocks:
//
//   - a deterministic shared-memory simulator in the paper's interleaving
//     model (registers of any atomicity, the eight single-bit
//     read-modify-write operations, pluggable adversarial schedulers,
//     full traces — or zero-allocation streaming through event Sinks
//     with online estimators and safety monitors);
//   - the step/register x worst-case/contention-free complexity measures,
//     computed from traces exactly as Sections 2.2 and 3.2 define them;
//   - the paper's algorithms: Lamport's fast mutual exclusion, the
//     Theorem 3 tournament for any atomicity l, Peterson/Kessels bit
//     tournaments, splitter-based contention detection, and the four
//     naming algorithms of Theorem 4;
//   - the closed-form bounds of Theorems 1-7 as checkable functions;
//   - executable adversaries for the lower-bound constructions and an
//     exhaustive model checker for small configurations, serial or
//     parallel (CheckOptions.Workers) with identical results.
//
// # Quick start
//
// Measure the contention-free complexity of Lamport's fast algorithm for
// 64 processes:
//
//	rep, err := cfc.MeasureMutex(cfc.LamportFast(), 64, cfc.MutexOptions{})
//	if err != nil { ... }
//	fmt.Println(rep.CF.Steps, rep.CF.Registers) // 7 3
//
// Build a custom protocol against the simulator directly:
//
//	mem := cfc.NewMemory(cfc.AtomicRegisters)
//	x := mem.Register("x", 8)
//	res, err := cfc.Run(cfc.Config{
//	    Mem:   mem,
//	    Procs: []cfc.ProcFunc{func(p *cfc.Proc) { p.Write(x, 1) }},
//	})
//
// The examples directory exercises the full API; cmd/cfcbench regenerates
// the paper's tables.
package cfc

import (
	"cfc/internal/adversary"
	"cfc/internal/bounds"
	"cfc/internal/check"
	"cfc/internal/contention"
	"cfc/internal/core"
	"cfc/internal/driver"
	"cfc/internal/experiments"
	"cfc/internal/metrics"
	"cfc/internal/mutex"
	"cfc/internal/naming"
	"cfc/internal/opset"
	"cfc/internal/sim"
)

// Simulator types (package sim).
type (
	// Memory is a collection of shared registers governed by an operation
	// model.
	Memory = sim.Memory
	// Reg is a handle to a shared register or a packed-word field view.
	Reg = sim.Reg
	// Proc is the handle through which a process body accesses shared
	// memory; each access is one scheduled atomic event.
	Proc = sim.Proc
	// ProcFunc is a process body.
	ProcFunc = sim.ProcFunc
	// Config describes one run; Result is its outcome; Trace the event
	// record.
	Config = sim.Config
	Result = sim.Result
	Trace  = sim.Trace
	Event  = sim.Event
	// Scheduler picks the interleaving; Decision is one choice.
	Scheduler = sim.Scheduler
	Decision  = sim.Decision
	// Engine selects the execution engine (EngineAuto picks the direct
	// engine for deterministic schedulers); Arena recycles run state
	// across runs; Session is an incrementally driven run.
	Engine  = sim.Engine
	Arena   = sim.Arena
	Session = sim.Session
	// Schedulers.
	Solo       = sim.Solo
	Sequential = sim.Sequential
	RoundRobin = sim.RoundRobin
	Scripted   = sim.Scripted
	Crasher    = sim.Crasher
	// CrashWindow is one crash/recovery cycle of Crasher.Windows.
	CrashWindow = sim.CrashWindow
	Phase       = sim.Phase
	// Sink receives a run's events as they happen (see the sim.Sink
	// contract); RunInfo describes the run to Sink.Begin; StopReason
	// says why a run ended. TraceSink buffers the default Trace,
	// StreamSink adapts closures, FanoutSink composes sinks and
	// DiscardSink drops everything (engine benchmarking).
	Sink        = sim.Sink
	RunInfo     = sim.RunInfo
	StopReason  = sim.StopReason
	TraceSink   = sim.TraceSink
	StreamSink  = sim.StreamSink
	FanoutSink  = sim.FanoutSink
	DiscardSink = sim.DiscardSink
)

// Scheduler and phase constants re-exported from package sim.
const (
	PhaseRemainder = sim.PhaseRemainder
	PhaseTry       = sim.PhaseTry
	PhaseCS        = sim.PhaseCS
	PhaseExit      = sim.PhaseExit
	PhaseDone      = sim.PhaseDone
)

// Execution engines re-exported from package sim; see the sim package
// comment for how each engine drives process bodies.
const (
	EngineAuto      = sim.EngineAuto
	EngineDirect    = sim.EngineDirect
	EngineGoroutine = sim.EngineGoroutine
)

// NewMemory returns an empty memory supporting exactly the operations in
// model.
func NewMemory(model Model) *Memory { return sim.NewMemory(model) }

// Run executes one run under cfg; see sim.Run.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// NewArena returns reusable run state for Config.Reuse; see sim.Arena.
func NewArena() *Arena { return sim.NewArena() }

// StartSession begins an incrementally driven run; see sim.StartSession.
func StartSession(cfg Config) (*Session, error) { return sim.StartSession(cfg) }

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) Scheduler { return sim.NewRandom(seed) }

// Operation model types (package opset).
type (
	// Op is one atomic operation; Model a set of operations.
	Op    = opset.Op
	Model = opset.Model
	// Acc is one pending access's footprint for the independence oracle.
	Acc = opset.Acc
	// PendingOp is a ready process's next request, observable through
	// Session.PendingOps before it commits — what the model checker's
	// partial-order reduction judges independence over.
	PendingOp = sim.PendingOp
)

// Independent reports whether two accesses commute — both orders yield
// identical memory and identical returns; see opset.Independent.
func Independent(a, b Acc) bool { return opset.Independent(a, b) }

// The eight single-bit operations of Section 3.1 plus the multi-bit
// register operations.
const (
	OpSkip         = opset.Skip
	OpRead         = opset.Read
	OpWrite0       = opset.Write0
	OpTestAndReset = opset.TestAndReset
	OpWrite1       = opset.Write1
	OpTestAndSet   = opset.TestAndSet
	OpFlip         = opset.Flip
	OpTestAndFlip  = opset.TestAndFlip
	OpReadWord     = opset.ReadWord
	OpWriteWord    = opset.WriteWord
)

// Named models from the paper.
var (
	AtomicRegisters = opset.AtomicRegisters
	TASOnly         = opset.TASOnly
	ReadTAS         = opset.ReadTAS
	ReadTASTAR      = opset.ReadTASTAR
	TAFOnly         = opset.TAFOnly
	RMW             = opset.RMW
	ReadWrite       = opset.ReadWrite
)

// ModelOf constructs the model containing exactly the given operations.
func ModelOf(ops ...Op) Model { return opset.ModelOf(ops...) }

// AllBitModels enumerates all 256 models over the eight bit operations.
func AllBitModels() []Model { return opset.AllBitModels() }

// Complexity measurement types (packages metrics and core).
type (
	// Measure is step/register complexity of one fragment, with
	// read/write refinements.
	Measure = metrics.Measure
	// Attempt is one mutual-exclusion attempt; Task one one-shot task
	// execution.
	Attempt = metrics.Attempt
	Task    = metrics.Task
	// Report is the measured complexity profile of an algorithm.
	Report = core.Report
	// MutexOptions and TaskOptions configure the measurement engines.
	MutexOptions = core.MutexOptions
	TaskOptions  = core.TaskOptions
)

// Online (streaming) observation sinks from package metrics: computed
// per event, so runs need not be buffered as traces at all.
type (
	// RunObserver accumulates the per-attempt estimators (steps,
	// bit-steps, histogram percentiles, contention, fast-path) online.
	RunObserver = metrics.RunObserver
	// SafetyMonitor checks the Spec-selected safety properties online,
	// with verdicts identical to the trace-based Check* functions.
	SafetyMonitor = metrics.SafetyMonitor
	// SafetySpec selects the properties a SafetyMonitor checks.
	SafetySpec = metrics.SafetySpec
)

// SafetyMonitor property selectors.
const (
	SafetyMutex         = metrics.SafetyMutex
	SafetyUniqueOutputs = metrics.SafetyUniqueOutputs
	SafetyDetection     = metrics.SafetyDetection
)

// MutexAttempts extracts the mutual-exclusion attempts from a trace.
func MutexAttempts(t *Trace) []Attempt { return metrics.MutexAttempts(t) }

// Tasks extracts the one-shot task executions from a trace.
func Tasks(t *Trace) []Task { return metrics.Tasks(t) }

// CheckMutualExclusion, CheckUniqueOutputs and CheckDetection are the
// safety properties of the paper's three problems.
func CheckMutualExclusion(t *Trace) error { return metrics.CheckMutualExclusion(t) }

// CheckUniqueOutputs verifies that all produced outputs are distinct.
func CheckUniqueOutputs(t *Trace) error { return metrics.CheckUniqueOutputs(t) }

// CheckDetection verifies the contention-detection safety property.
func CheckDetection(t *Trace, requireWinner bool) error {
	return metrics.CheckDetection(t, requireWinner)
}

// Mutual-exclusion algorithms (package mutex).
type (
	// MutexAlgorithm is a mutual-exclusion algorithm family;
	// MutexInstance one set-up instance.
	MutexAlgorithm = mutex.Algorithm
	MutexInstance  = mutex.Instance
	// NodeKind selects the l = 1 tournament node; BackoffPolicy the
	// Section 4 delay policy.
	NodeKind      = mutex.NodeKind
	BackoffPolicy = mutex.BackoffPolicy
)

// Tournament node kinds and backoff policies.
const (
	NodePeterson       = mutex.NodePeterson
	NodeKessels        = mutex.NodeKessels
	BackoffNone        = mutex.BackoffNone
	BackoffLinear      = mutex.BackoffLinear
	BackoffExponential = mutex.BackoffExponential
)

// LamportFast returns Lamport's fast mutual exclusion algorithm [Lam87]:
// contention-free complexity 7 steps on 3 registers at atomicity log n.
func LamportFast() MutexAlgorithm { return mutex.Lamport{} }

// PackedLamport returns the multi-grain variant after [MS93]: 7 steps on
// 2 registers at doubled atomicity.
func PackedLamport() MutexAlgorithm { return mutex.PackedLamport{} }

// TournamentMutex returns the Theorem 3 construction at atomicity l with
// the default (Peterson) l = 1 node.
func TournamentMutex(l int) MutexAlgorithm { return mutex.Tournament{L: l} }

// TournamentMutexWithNode returns the Theorem 3 construction with an
// explicit l = 1 node kind (ablation 2 of DESIGN.md).
func TournamentMutexWithNode(l int, node NodeKind) MutexAlgorithm {
	return mutex.Tournament{L: l, Node: node}
}

// Peterson2P returns Peterson's two-process algorithm.
func Peterson2P() MutexAlgorithm { return mutex.Peterson{} }

// Kessels2P returns Kessels's single-writer two-process algorithm
// [Kes82].
func Kessels2P() MutexAlgorithm { return mutex.Kessels{} }

// TASLock and TTASLock return the read-modify-write spin-lock baselines.
func TASLock() MutexAlgorithm  { return mutex.TASLock{} }
func TTASLock() MutexAlgorithm { return mutex.TTASLock{} }

// TTASWithBackoff returns a test-and-test-and-set lock with the Section 4
// backoff policy.
func TTASWithBackoff(policy BackoffPolicy) MutexAlgorithm {
	return mutex.BackoffTTAS{Policy: policy}
}

// LamportWithBackoff returns Lamport's fast algorithm with backoff at its
// contention-detection points.
func LamportWithBackoff(policy BackoffPolicy) MutexAlgorithm {
	return mutex.BackoffLamport{Policy: policy}
}

// MeasureMutex measures a mutual-exclusion algorithm: exact
// contention-free complexity plus the empirical worst case over a
// schedule portfolio.
func MeasureMutex(alg MutexAlgorithm, n int, opts MutexOptions) (Report, error) {
	return core.MeasureMutex(alg, n, opts)
}

// VerifyMutexBounds cross-checks a report against Theorems 1 and 2.
func VerifyMutexBounds(rep Report) error { return core.VerifyMutexBounds(rep) }

// Contention detection (package contention).
type (
	// Detector is a contention-detection algorithm family;
	// DetectorInstance one set-up instance.
	Detector         = contention.Detector
	DetectorInstance = contention.Instance
)

// SplitterDetector returns the 4-step, 2-register wait-free detector at
// atomicity log n.
func SplitterDetector() Detector { return contention.Splitter{} }

// SplitterTreeDetector returns the atomicity-l detector: a 2^l-ary tree
// of splitters, 4*ceil(log n/l) worst-case steps (Section 2.6).
func SplitterTreeDetector(l int) Detector { return contention.ChunkedSplitter{L: l} }

// DetectorFromMutex returns the Lemma 1 reduction from a mutual-exclusion
// algorithm.
func DetectorFromMutex(alg MutexAlgorithm) Detector { return contention.FromMutex{Alg: alg} }

// Naming (package naming).
type (
	// NamingAlgorithm is a naming-algorithm family; NamingInstance one
	// set-up instance.
	NamingAlgorithm = naming.Algorithm
	NamingInstance  = naming.Instance
)

// TAFTreeNaming returns the Theorem 4(1) test-and-flip tree (all four
// measures log n).
func TAFTreeNaming() NamingAlgorithm { return naming.TAFTree{} }

// TASTARTreeNaming returns the Theorem 4(2) alternation tree (worst-case
// register complexity log n).
func TASTARTreeNaming() NamingAlgorithm { return naming.TASTARTree{} }

// TASScanNaming returns the Theorem 4(3) linear scan (all four measures
// n-1).
func TASScanNaming() NamingAlgorithm { return naming.TASScan{} }

// TASBinSearchNaming returns the Theorem 4(4) binary search + scan
// (contention-free step complexity log n).
func TASBinSearchNaming() NamingAlgorithm { return naming.TASBinSearch{} }

// RandomizedNaming returns the probabilistic naming extension for the
// {read, write} model, in which deterministic naming is impossible
// (Section 3.1; after the [LP90] pointer). Names are unique up to 63-bit
// token collisions; termination is probabilistic. See naming.Randomized.
func RandomizedNaming(seed int64) NamingAlgorithm { return naming.Randomized{Seed: seed} }

// MeasureDetector and MeasureNaming run the one-shot measurement engine.
func MeasureDetector(det Detector, n int, opts TaskOptions) (Report, error) {
	return core.MeasureTask(core.DetectorTask(det, n), opts)
}

// MeasureNaming measures a naming algorithm at n processes.
func MeasureNaming(alg NamingAlgorithm, n int, opts TaskOptions) (Report, error) {
	return core.MeasureTask(core.NamingTask(alg, n), opts)
}

// Closed-form bounds (package bounds).
var (
	// MutexCFStepLower and MutexCFRegLower are the Theorem 1 and 2
	// thresholds; MutexCFStepUpper/MutexCFRegUpper the Theorem 3 closed
	// forms.
	MutexCFStepLower = bounds.MutexCFStepLower
	MutexCFRegLower  = bounds.MutexCFRegLower
	MutexCFStepUpper = bounds.MutexCFStepUpper
	MutexCFRegUpper  = bounds.MutexCFRegUpper
	// Lemma3Holds and Lemma6Holds are the combinatorial necessary
	// conditions on contention detectors.
	Lemma3Holds = bounds.Lemma3Holds
	Lemma6Holds = bounds.Lemma6Holds
	// NamingTable returns the Section 3.3 tight-bounds table.
	NamingTable = bounds.NamingTable
)

// Model checking (package check).
type (
	// CheckOptions configures exhaustive exploration; CheckResult reports
	// it; Builder constructs a fresh program per replay.
	CheckOptions = check.Options
	CheckResult  = check.Result
	Builder      = check.Builder
	Violation    = check.Violation
)

// Explore exhaustively explores the interleavings of a small program,
// serially or on CheckOptions.Workers parallel workers; see check.Explore.
func Explore(build Builder, prop func(*Trace) error, opts CheckOptions) (CheckResult, error) {
	return check.Explore(build, prop, opts)
}

// Adversaries (package adversary).
var (
	// CheckLemma2 verifies the Lemma 2 condition on a detector's solo
	// runs; CloneWorstSteps runs the Theorem 6 clone schedule;
	// SequentialWorstRegisters the Theorem 5/7 sequential run;
	// StarveVictim the [AT92] unbounded-worst-case demonstration.
	CheckLemma2              = adversary.CheckLemma2
	CloneWorstSteps          = adversary.CloneWorstSteps
	SequentialWorstRegisters = adversary.SequentialWorstRegisters
	StarveVictim             = adversary.StarveVictim
)

// Drivers (package driver).
var (
	// MutexBody wraps a lock into a marked process body; TaskBody wraps a
	// one-shot task.
	MutexBody = driver.MutexBody
	TaskBody  = driver.TaskBody
	// SoloMutexRun, ContentionFreeMutex, ContendedMutexRun, TaskRun and
	// SoloTaskRun are the standard run shapes.
	SoloMutexRun        = driver.SoloMutexRun
	ContentionFreeMutex = driver.ContentionFreeMutex
	ContendedMutexRun   = driver.ContendedMutexRun
	TaskRun             = driver.TaskRun
	SoloTaskRun         = driver.SoloTaskRun
	// RunInto executes a run streaming its events into a Sink, for
	// sweeps that observe runs online instead of retaining traces.
	RunInto = driver.RunInto
)

// Experiments (package experiments).
type (
	// ExperimentTable is a formatted experiment result.
	ExperimentTable = experiments.Table
)

// Experiment entry points regenerating the paper's artifacts.
var (
	TableM          = experiments.TableM
	TableN          = experiments.TableN
	AtomicitySweep  = experiments.AtomicitySweep
	MultiGrainSweep = experiments.MultiGrain
	BackoffSweep    = experiments.Backoff
	DetectionSweep  = experiments.DetectionSweep
	StarvationSweep = experiments.Starvation
	NodeAblation    = experiments.NodeAblation
	AllExperiments  = experiments.All
)
