package cfc_test

// Runnable godoc examples for the cfc facade. `go test ./...` executes
// them and compares outputs, so the README's quickstart snippets stay
// honest: these are the same calls, kept compiling and kept correct.

import (
	"fmt"

	"cfc"
)

// ExampleRun drives one deterministic run: two processes share an 8-bit
// register, the Sequential scheduler runs them to completion one at a
// time (process 0 first), and the trace records every atomic event of
// the interleaving.
func ExampleRun() {
	mem := cfc.NewMemory(cfc.AtomicRegisters)
	x := mem.Register("x", 8)
	writer := func(p *cfc.Proc) { p.Write(x, 7) }
	reader := func(p *cfc.Proc) { fmt.Println("reader saw", p.Read(x)) }

	res, err := cfc.Run(cfc.Config{
		Mem:   mem,
		Procs: []cfc.ProcFunc{writer, reader},
		Sched: cfc.Sequential{},
	})
	if err != nil || res.Err != nil {
		fmt.Println("run failed:", err, res.Err)
		return
	}
	fmt.Println("stop:", res.Trace.Stop)
	fmt.Println("scheduled steps:", res.Trace.ScheduledSteps)
	// Output:
	// reader saw 7
	// stop: all-done
	// scheduled steps: 2
}

// ExampleExplore model-checks a tiny program exhaustively: two processes
// each perform a single write, so there are exactly two maximal
// interleavings and three non-terminal states (the initial state and one
// per first writer). Workers: 2 runs the parallel explorer; completed
// explorations report identical results at any worker count.
func ExampleExplore() {
	build := func() (*cfc.Memory, []cfc.ProcFunc, error) {
		mem := cfc.NewMemory(cfc.AtomicRegisters)
		x := mem.Register("x", 8)
		body := func(p *cfc.Proc) { p.Write(x, uint64(p.ID()+1)) }
		return mem, []cfc.ProcFunc{body, body}, nil
	}
	// The property holds trivially here; real callers pass
	// cfc.CheckMutualExclusion, cfc.CheckUniqueOutputs, ...
	res, err := cfc.Explore(build, cfc.CheckMutualExclusion, cfc.CheckOptions{
		MaxDepth: 20,
		Workers:  2,
	})
	if err != nil {
		fmt.Println("explore failed:", err)
		return
	}
	fmt.Println("states:", res.States)
	fmt.Println("runs:", res.Runs)
	fmt.Println("violation found:", res.Violation != nil)
	// Output:
	// states: 3
	// runs: 2
	// violation found: false
}
