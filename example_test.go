package cfc_test

// Runnable godoc examples for the cfc facade. `go test ./...` executes
// them and compares outputs, so the README's quickstart snippets stay
// honest: these are the same calls, kept compiling and kept correct.

import (
	"fmt"

	"cfc"
)

// ExampleRun drives one deterministic run: two processes share an 8-bit
// register, the Sequential scheduler runs them to completion one at a
// time (process 0 first), and the trace records every atomic event of
// the interleaving.
func ExampleRun() {
	mem := cfc.NewMemory(cfc.AtomicRegisters)
	x := mem.Register("x", 8)
	writer := func(p *cfc.Proc) { p.Write(x, 7) }
	reader := func(p *cfc.Proc) { fmt.Println("reader saw", p.Read(x)) }

	res, err := cfc.Run(cfc.Config{
		Mem:   mem,
		Procs: []cfc.ProcFunc{writer, reader},
		Sched: cfc.Sequential{},
	})
	if err != nil || res.Err != nil {
		fmt.Println("run failed:", err, res.Err)
		return
	}
	fmt.Println("stop:", res.Trace.Stop)
	fmt.Println("scheduled steps:", res.Trace.ScheduledSteps)
	// Output:
	// reader saw 7
	// stop: all-done
	// scheduled steps: 2
}

// ExampleExplore model-checks a tiny program exhaustively: two processes
// each perform a single write, so there are exactly two maximal
// interleavings and three non-terminal states (the initial state and one
// per first writer). Workers: 2 runs the parallel explorer; completed
// explorations report identical results at any worker count.
func ExampleExplore() {
	build := func() (*cfc.Memory, []cfc.ProcFunc, error) {
		mem := cfc.NewMemory(cfc.AtomicRegisters)
		x := mem.Register("x", 8)
		body := func(p *cfc.Proc) { p.Write(x, uint64(p.ID()+1)) }
		return mem, []cfc.ProcFunc{body, body}, nil
	}
	// The property holds trivially here; real callers pass
	// cfc.CheckMutualExclusion, cfc.CheckUniqueOutputs, ...
	res, err := cfc.Explore(build, cfc.CheckMutualExclusion, cfc.CheckOptions{
		MaxDepth: 20,
		Workers:  2,
	})
	if err != nil {
		fmt.Println("explore failed:", err)
		return
	}
	fmt.Println("states:", res.States)
	fmt.Println("runs:", res.Runs)
	fmt.Println("violation found:", res.Violation != nil)
	// Output:
	// states: 3
	// runs: 2
	// violation found: false
}

// ExampleExplore_reduction shows partial-order reduction at work: two
// processes write three values each to private registers, so every
// interleaving permutes commuting steps. The reference exploration walks
// the full 4x4 lattice of positions; with CheckOptions.POR the explorer
// proves the same verdict along a single ample order, and the ratio of
// the two state counts is the reduction cfccheck -pordiff reports per
// portfolio entry.
func ExampleExplore_reduction() {
	build := func() (*cfc.Memory, []cfc.ProcFunc, error) {
		mem := cfc.NewMemory(cfc.AtomicRegisters)
		a := mem.Register("a", 8)
		b := mem.Register("b", 8)
		body := func(r cfc.Reg) cfc.ProcFunc {
			return func(p *cfc.Proc) {
				for i := 0; i < 3; i++ {
					p.Write(r, uint64(i+1))
				}
			}
		}
		return mem, []cfc.ProcFunc{body(a), body(b)}, nil
	}
	prop := func(*cfc.Trace) error { return nil }
	ref, err := cfc.Explore(build, prop, cfc.CheckOptions{MaxDepth: 20})
	if err != nil {
		fmt.Println("explore failed:", err)
		return
	}
	por, err := cfc.Explore(build, prop, cfc.CheckOptions{MaxDepth: 20, POR: true})
	if err != nil {
		fmt.Println("explore failed:", err)
		return
	}
	fmt.Printf("reference: %d states, %d runs\n", ref.States, ref.Runs)
	fmt.Printf("reduced:   %d states, %d run\n", por.States, por.Runs)
	fmt.Printf("reduction: %.1fx\n", float64(ref.States)/float64(por.States))
	// Output:
	// reference: 15 states, 2 runs
	// reduced:   6 states, 1 run
	// reduction: 2.5x
}
